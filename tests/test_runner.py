"""Grid runner, run store, compile cache and CLI orchestration tests."""

import json

import pytest

from repro.arch import paper_machine
from repro.compiler.options import CompilerOptions
from repro.eval import (
    Cell,
    RunStore,
    Session,
    StoreMismatchError,
    run_cells,
    run_fingerprint,
)
from repro.eval.cli import main
from repro.kernels import SUITE
from repro.kernels.cache import ProgramCache, cache_key
from repro.sim import SimConfig

TINY = SimConfig(instr_limit=800, timeslice=400, warmup_instrs=200)


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


class TestCell:
    def test_key_is_stable(self):
        c = Cell("fig4", "workload", "LLHH", "3SSS")
        assert c.key == "workload:LLHH:3SSS:base"

    def test_rejects_unknown_kind_and_variant(self):
        with pytest.raises(ValueError):
            Cell("x", "nope", "LLHH", "3SSS")
        with pytest.raises(ValueError):
            Cell("x", "workload", "LLHH", "3SSS", variant="nope")

    def test_grid_rejects_mixed_experiments(self, machine):
        cells = [Cell("a", "bench", "mcf", "ST"),
                 Cell("b", "bench", "mcf", "ST")]
        with pytest.raises(ValueError, match="mixes"):
            run_cells(cells, TINY, machine)

    def test_grid_rejects_duplicates(self, machine):
        cells = [Cell("a", "bench", "mcf", "ST"),
                 Cell("a", "bench", "mcf", "ST")]
        with pytest.raises(ValueError, match="duplicate"):
            run_cells(cells, TINY, machine)


class TestParallelEqualsSerial:
    def test_fig4_bitwise_identical(self, machine):
        serial = Session(machine=machine, config=TINY).run("fig4")
        parallel = Session(machine=machine, config=TINY,
                           jobs=2).run("fig4")
        assert serial.rows == parallel.rows
        assert serial.meta == parallel.meta

    def test_fig10_bitwise_identical(self, machine):
        serial = Session(machine=machine, config=TINY).run("fig10")
        parallel = Session(machine=machine, config=TINY,
                           jobs=2).run("fig10")
        assert serial.rows == parallel.rows
        assert serial.meta == parallel.meta


class TestResume:
    CELLS = [Cell("fig6", "workload", wl, s)
             for wl in ("LLLL", "HHHH") for s in ("3SSS", "3CCC")]

    def test_resume_skips_completed_cells(self, tmp_path, machine):
        store = RunStore.open_or_create(tmp_path / "run")
        first = run_cells(self.CELLS, TINY, machine, store=store)
        assert first.executed == 4 and first.reused == 0
        second = run_cells(self.CELLS, TINY, machine, store=store)
        assert second.executed == 0 and second.reused == 4
        assert second.values == first.values

    def test_resume_across_store_instances(self, tmp_path, machine):
        path = tmp_path / "run"
        run_cells(self.CELLS, TINY, machine,
                  store=RunStore.open_or_create(path))
        fresh = RunStore.open_or_create(path)
        again = run_cells(self.CELLS, TINY, machine, store=fresh)
        assert again.executed == 0 and again.reused == 4

    def test_partial_resume_runs_only_missing(self, tmp_path, machine):
        store = RunStore.open_or_create(tmp_path / "run")
        run_cells(self.CELLS[:2], TINY, machine, store=store)
        both = run_cells(self.CELLS, TINY, machine, store=store)
        assert both.executed == 2 and both.reused == 2

    def test_fingerprint_mismatch_rejected(self, tmp_path, machine):
        path = tmp_path / "run"
        RunStore.open_or_create(path, run_fingerprint(TINY, machine))
        other = SimConfig(instr_limit=999, timeslice=333, warmup_instrs=111)
        with pytest.raises(StoreMismatchError):
            RunStore.open_or_create(path, run_fingerprint(other, machine))

    def test_fingerprint_adopted_by_unstamped_directory(self, tmp_path,
                                                        machine):
        path = tmp_path / "run"
        RunStore.open_or_create(path)  # API use: no fingerprint recorded
        stamped = RunStore.open_or_create(path, run_fingerprint(TINY, machine))
        assert stamped.manifest()["fingerprint"]
        other = SimConfig(instr_limit=999, timeslice=333, warmup_instrs=111)
        with pytest.raises(StoreMismatchError):
            RunStore.open_or_create(path, run_fingerprint(other, machine))

    def test_manifest_records_true_executed_counts(self, tmp_path, machine):
        store = RunStore.open_or_create(tmp_path / "run")
        session = Session(machine=machine, config=TINY, store=store)
        session.run("fig6")
        recorded = store.manifest()["experiments"]["fig6"]
        assert session.last_grid.executed == 18
        assert recorded == {"cells": 18, "executed": 18, "reused": 0}


class TestRunStore:
    def test_manifest_created(self, tmp_path, machine):
        store = RunStore.open_or_create(tmp_path / "r",
                                        run_fingerprint(TINY, machine))
        manifest = store.manifest()
        assert manifest["fingerprint"]["machine"] == machine.describe()

    def test_cells_roundtrip(self, tmp_path):
        store = RunStore.open_or_create(tmp_path / "r")
        store.record_cell("figX", "workload:LLLL:ST:base", 1.25)
        assert RunStore(store.path).load_cells("figX") == {
            "workload:LLLL:ST:base": 1.25}

    def test_grid_records_cell_meta(self, tmp_path, machine):
        """Executed cells leave diagnostic metadata (engine + stats)
        beside their values — resume neither needs nor re-writes it."""
        cfg = SimConfig(instr_limit=300, timeslice=150, warmup_instrs=60,
                        engine="jit")
        store = RunStore.open_or_create(tmp_path / "r")
        cells = [Cell("figX", "workload", "LLLL", s)
                 for s in ("1S", "3CCC")]
        run_cells(cells, cfg, machine, store=store)
        meta = store.load_cell_meta("figX")
        assert set(meta) == {c.key for c in cells}
        entry = meta[cells[1].key]
        assert entry["engine"] == "jit"
        assert entry["engine_stats"]["fallback_runs"] == 0
        # resumed runs execute nothing and leave the metadata alone
        again = run_cells(cells, cfg, machine, store=RunStore(store.path))
        assert again.executed == 0
        assert RunStore(store.path).load_cell_meta("figX") == meta

    def test_artifact_roundtrip(self, tmp_path, machine):
        store = RunStore.open_or_create(tmp_path / "r")
        result = Session(machine=machine).run("fig9")
        store.save_artifact(result)
        loaded = store.load_artifact("fig9")
        assert loaded.rows == result.rows
        assert store.manifest()["experiments"]["fig9"]["status"] == "done"


class TestProgramCache:
    def test_disk_cache_skips_recompilation(self, tmp_path, monkeypatch,
                                            machine):
        import repro.kernels.cache as cache_mod

        calls = []
        real = cache_mod.compile_kernel
        monkeypatch.setattr(cache_mod, "compile_kernel",
                            lambda *a, **kw: calls.append(1) or real(*a, **kw))
        spec = SUITE[0]
        warm = ProgramCache(str(tmp_path))
        prog1 = warm.get(spec, machine)
        assert len(calls) == 1 and warm.compiles == 1
        # fresh cache, same directory: served from disk, no recompile
        cold = ProgramCache(str(tmp_path))
        prog2 = cold.get(spec, machine)
        assert len(calls) == 1 and cold.disk_hits == 1
        assert prog1.dump() == prog2.dump()
        # memory hit on repeat
        assert cold.get(spec, machine) is prog2
        assert cold.memory_hits == 1

    def test_key_changes_with_options(self, machine):
        spec = SUITE[0]
        base = cache_key(spec, machine, CompilerOptions())
        other = cache_key(spec, machine, CompilerOptions(unroll_scale=2.0))
        assert base != other

    def test_corrupt_disk_entry_falls_back(self, tmp_path, machine):
        spec = SUITE[0]
        cache = ProgramCache(str(tmp_path))
        key = cache_key(spec, machine, CompilerOptions())
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        prog = cache.get(spec, machine)
        assert prog is not None and cache.compiles == 1


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "117" in out

    def test_out_directory_created(self, tmp_path, capsys):
        out = tmp_path / "nested" / "run"
        assert main(["-e", "fig9", "--out", str(out)]) == 0
        assert (out / "fig9.json").exists()
        assert (out / "manifest.json").exists()

    def test_runner_exception_gives_nonzero_exit(self, monkeypatch, capsys):
        from repro.eval import experiments

        def boom(machine=None):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(experiments._STATIC_RUNNERS, "fig9", boom)
        assert main(["-e", "fig9"]) == 1
        err = capsys.readouterr().err
        assert "synthetic failure" in err and "Traceback" not in err

    def test_subcommand_form_equivalent_to_legacy(self, tmp_path, capsys):
        """`repro-eval run ...` and the bare legacy flag form agree."""
        assert main(["run", "--list"]) == 0
        sub = capsys.readouterr().out
        assert main(["--list"]) == 0
        assert capsys.readouterr().out == sub

    def test_out_resume_conflict_rejected(self, tmp_path, capsys):
        """Different --out and --resume directories must error, not
        silently drop --out (the old `resume or out` behavior)."""
        assert main(["-e", "fig9", "--out", str(tmp_path / "a"),
                     "--resume", str(tmp_path / "b")]) == 1
        err = capsys.readouterr().err
        assert "conflicts" in err
        assert not (tmp_path / "a").exists()
        assert not (tmp_path / "b").exists()

    def test_out_resume_same_directory_allowed(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        assert main(["-e", "fig9", "--out", run_dir,
                     "--resume", run_dir]) == 0
        assert (tmp_path / "run" / "fig9.json").exists()

    def test_scale_mismatch_on_resume_errors(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        assert main(["-e", "fig9", "--out", run_dir, "--scale", "0.05"]) == 0
        assert main(["-e", "fig9", "--resume", run_dir,
                     "--scale", "0.10"]) == 1
        assert "different config" in capsys.readouterr().err

    def test_parallel_resume_cycle(self, tmp_path, capsys):
        """--jobs N equals --jobs 1, and --resume reruns zero cells."""
        run_dir = str(tmp_path / "run")
        assert main(["-e", "fig4", "--scale", "0.04", "--jobs", "2",
                     "--out", run_dir]) == 0
        first = capsys.readouterr().out
        assert "cells: 27 simulated, 0 reused" in first
        saved = json.load(open(f"{run_dir}/fig4.json"))

        assert main(["-e", "fig4", "--scale", "0.04",
                     "--resume", run_dir]) == 0
        second = capsys.readouterr().out
        assert "cells: 0 simulated, 27 reused" in second
        resumed = json.load(open(f"{run_dir}/fig4.json"))
        assert resumed["rows"] == saved["rows"]

        from repro.eval import default_config

        serial = Session(config=default_config(0.04)).run("fig4")
        assert [list(r) for r in serial.rows] == saved["rows"]

    def test_all_simulates_fig10_once(self, monkeypatch, capsys):
        """--experiment all shares one fig10 result with fig11/fig12."""
        from repro.eval import experiments

        executed = {}
        real = experiments.run_cells

        def counting(cells, config, machine=None, jobs=1, store=None):
            grid = real(cells, config, machine, jobs=jobs, store=store)
            executed[grid.experiment] = (executed.get(grid.experiment, 0)
                                         + grid.executed)
            return grid

        monkeypatch.setattr(experiments, "run_cells", counting)
        assert main(["-e", "all", "--scale", "0.04"]) == 0
        assert executed["fig10"] == 117  # once, not three times
        out = capsys.readouterr().out
        for name in ("table1", "table2", "fig4", "fig5", "fig6", "fig9",
                     "fig10", "fig11", "fig12"):
            assert f"== {name}:" in out
