"""Beyond the paper's 4 threads: 8-thread schemes and wider machines.

The paper's motivation (Figure 5) models merge-control cost up to 8
threads; the scheme grammar, cost model and simulator all generalize, so
we verify the machinery end to end at that scale.
"""

from repro.arch import paper_machine, wide_machine
from repro.compiler import compile_kernel
from repro.cost import csmt_serial, scheme_cost
from repro.merge import get_scheme, parse_scheme
from repro.merge.packet import MergeRules
from repro.sim import SimConfig, run_workload
from tests.conftest import build_saxpy, build_serial


class TestEightThreadSchemes:
    def test_c8_parses(self):
        s = parse_scheme("C8", n_threads=8)
        assert s.n_ports == 8

    def test_long_cascade_parses(self):
        s = parse_scheme("7SCCCCCC", n_threads=8)
        assert s.n_ports == 8
        assert s.count_blocks() == {"S": 1, "C": 6, "parC": 0}

    def test_hybrid_with_parallel_block(self):
        s = parse_scheme("2SC7", n_threads=8)
        assert s.n_ports == 8
        assert s.count_blocks() == {"S": 1, "C": 0, "parC": 1}

    def test_c8_equivalent_to_cascade(self):
        """Functional equivalence holds at any width."""
        import random

        from tests.conftest import packet

        machine = paper_machine()
        rules = MergeRules(machine)
        c8 = parse_scheme("C8", n_threads=8)
        cascade = parse_scheme("7CCCCCCC", n_threads=8)
        rng = random.Random(42)
        for _ in range(200):
            ports = []
            for p in range(8):
                if rng.random() < 0.3:
                    ports.append(None)
                    continue
                clusters = {c: (rng.randint(1, 2), 0, 0, 0)
                            for c in range(4) if rng.random() < 0.4}
                clusters = clusters or {rng.randrange(4): (1, 0, 0, 0)}
                ports.append(packet(machine, clusters, p))
            a = c8.select(ports, rules)
            b = cascade.select(ports, rules)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.ports == b.ports

    def test_cost_model_scales(self):
        c4 = scheme_cost(get_scheme("C4"))
        c8 = scheme_cost(parse_scheme("C8", n_threads=8))
        assert c8.transistors > 10 * c4.transistors  # exponential block
        big = scheme_cost(parse_scheme("7SCCCCCC", n_threads=8))
        assert big.transistors < 2 * scheme_cost(get_scheme("3SCC")).transistors

    def test_eight_context_simulation(self):
        machine = paper_machine()
        progs = [compile_kernel(build_serial(), machine)] * 8
        cfg = SimConfig(instr_limit=800, timeslice=400, warmup_instrs=100)
        res8 = run_workload(progs, "7SCCCCCC", cfg)
        res4 = run_workload(progs[:4], "3SCC", cfg)
        assert res8.ipc > res4.ipc  # more narrow threads, more merging

    def test_csmt_supports_more_threads_cheaply(self):
        """The paper's core scaling argument, at the cost level."""
        assert csmt_serial(8).transistors < scheme_cost(get_scheme("1S")).transistors / 4


class TestWiderMachine:
    def test_compile_for_8_clusters(self):
        m = wide_machine()
        prog = compile_kernel(build_saxpy(), m, unroll_hints={"loop": 8})
        prog.validate()
        used = set()
        for blk in prog.blocks:
            for mop in blk.mops:
                used.update(mop.clusters_used())
        assert len(used) >= 4  # unrolled code spreads over the wider machine

    def test_simulate_on_8_clusters(self):
        m = wide_machine()
        prog = compile_kernel(build_saxpy(), m, unroll_hints={"loop": 4})
        cfg = SimConfig(instr_limit=1_000, timeslice=500, warmup_instrs=100)
        res = run_workload([prog] * 4, "3CCC", cfg)
        assert 0 < res.ipc <= m.total_issue_width

    def test_merge_rules_respect_wider_mask(self):
        m = wide_machine()
        rules = MergeRules(m)
        from tests.conftest import packet

        a = packet(m, {6: (2, 0, 0, 0)}, 0)
        b = packet(m, {7: (2, 0, 0, 0)}, 1)
        assert rules.try_csmt(a, b) is not None
        c = packet(m, {6: (3, 0, 0, 0)}, 2)
        assert rules.try_csmt(a, c) is None
        assert rules.try_smt(a, c) is None  # 5 ops > 4-wide cluster


class TestDiagram:
    def test_cascade_diagram(self):
        d = get_scheme("3SCC").diagram()
        assert "S" in d and "P0" in d and "P3" in d

    def test_parallel_diagram_labels_width(self):
        assert "C3" in get_scheme("2SC3").diagram()

    def test_tree_diagram(self):
        d = get_scheme("2CS").diagram()
        assert d.splitlines()[0].endswith("S")
