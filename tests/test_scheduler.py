"""List-scheduler tests: resources, slots, terminator pinning."""

import pytest

from repro.arch import paper_machine, small_machine
from repro.compiler.cluster import assign_clusters
from repro.compiler.ddg import build_ddg
from repro.compiler.scheduler import (
    ScheduleError,
    list_schedule,
    validate_schedule,
)
from repro.ir import KernelBuilder

MACHINE = paper_machine()


def _lat(op):
    return MACHINE.latency_of(op.opcode.op_class)


def _schedule(build, machine=MACHINE, policy="single"):
    b = KernelBuilder("k")
    b.pattern("p", "table", 4096)
    b.param("i", "j")
    b.block("main")
    build(b)
    ops = list(b.build().blocks[0].ops)
    ddg = build_ddg(ops, _lat, frozenset())
    clusters = assign_clusters(ops, ddg, machine, policy)
    sched = list_schedule(ops, clusters, ddg, machine)
    validate_schedule(ops, ddg, sched)
    return ops, clusters, sched


class TestResources:
    def test_mem_cap_one_per_cluster_cycle(self):
        ops, clusters, sched = _schedule(
            lambda b: [b.ld(None, "i", "p") for _ in range(3)]
        )
        cycles = [sched.placement[i][0] for i in range(3)]
        assert sorted(cycles) == [0, 1, 2]  # all on cluster 0: serialized

    def test_mem_spreads_with_bug(self):
        ops, clusters, sched = _schedule(
            lambda b: [b.ld(None, "i", "p") for _ in range(4)], policy="bug"
        )
        at_zero = [i for i in range(4) if sched.placement[i][0] == 0]
        assert len(at_zero) == 4  # one per cluster

    def test_issue_width_cap(self):
        ops, clusters, sched = _schedule(
            lambda b: [b.add(None, "i", k) for k in range(6)]
        )
        by_cycle = {}
        for i in range(6):
            by_cycle.setdefault(sched.placement[i][0], []).append(i)
        assert max(len(v) for v in by_cycle.values()) <= 4

    def test_mul_cap_two_per_cluster(self):
        ops, clusters, sched = _schedule(
            lambda b: [b.mpy(None, "i", k) for k in range(3)]
        )
        c0 = [sched.placement[i][0] for i in range(3)]
        assert len([c for c in c0 if c == 0]) == 2

    def test_latency_respected(self):
        ops, clusters, sched = _schedule(
            lambda b: (b.ld("x", "i", "p"), b.add(None, "x", 1))
        )
        assert sched.placement[1][0] >= sched.placement[0][0] + 2


class TestSlots:
    def test_slot_classes_legal(self):
        ops, clusters, sched = _schedule(
            lambda b: (b.ld(None, "i", "p"), b.mpy(None, "i", 2),
                       b.add(None, "i", 1), b.add(None, "j", 1)),
            policy="single",
        )
        spec = MACHINE.cluster
        for i, op in enumerate(ops):
            _cy, _c, slot = sched.placement[i]
            assert slot in spec.slots_for(op.opcode.op_class)

    def test_no_slot_collisions(self):
        ops, clusters, sched = _schedule(
            lambda b: [b.add(None, "i", k) for k in range(8)]
        )
        seen = set()
        for i in range(len(ops)):
            key = sched.placement[i]
            assert key not in seen
            seen.add(key)

    def test_restricted_classes_placed_before_alu(self):
        """A full cluster cycle (mem+br+mul+alu) must route cleanly."""
        def build(b):
            b.ld(None, "i", "p")
            b.mpy(None, "i", 2)
            b.add(None, "i", 1)
        ops, clusters, sched = _schedule(build)
        slots = {ops[i].name: sched.placement[i][2]
                 for i in range(3) if sched.placement[i][0] == 0}
        if "ld" in slots:
            assert slots["ld"] == 0
        if "mpy" in slots:
            assert slots["mpy"] in (2, 3)


class TestTerminator:
    def test_terminator_scheduled_last(self):
        def build(b):
            v = b.ld(None, "i", "p")
            w = b.add(None, v, 1)
            b.st(w, "i", "p")
            c = b.cmp(None, "i", 4)
            b.br_loop(c, "main", trip=4)
        ops, clusters, sched = _schedule(build)
        term_cycle = sched.placement[len(ops) - 1][0]
        assert term_cycle == sched.n_cycles - 1
        for i in range(len(ops) - 1):
            assert sched.placement[i][0] <= term_cycle

    def test_empty_block(self):
        sched = list_schedule([], [], build_ddg([], _lat, frozenset()), MACHINE)
        assert sched.n_cycles == 1


class TestValidateSchedule:
    def test_catches_latency_violation(self):
        b = KernelBuilder("k")
        b.pattern("p", "table", 64)
        b.param("i")
        b.block("main")
        b.ld("x", "i", "p")
        b.add(None, "x", 1)
        ops = list(b.build().blocks[0].ops)
        ddg = build_ddg(ops, _lat, frozenset())
        sched = list_schedule(ops, [0, 0], ddg, MACHINE)
        sched.placement[1] = (sched.placement[0][0], 0, 3)  # force overlap
        with pytest.raises(ScheduleError, match="dependence violated"):
            validate_schedule(ops, ddg, sched)

    def test_catches_op_after_terminator(self):
        def build(b):
            b.add("j", "i", 1)
            c = b.cmp(None, "i", 4)
            b.br_loop(c, "main", trip=4)
        ops, clusters, sched = _schedule(build)
        sched.placement[0] = (sched.n_cycles + 5, 0, 3)
        with pytest.raises(ScheduleError):
            validate_schedule(ops, sched and _ddg_of(ops), sched)


def _ddg_of(ops):
    return build_ddg(list(ops), _lat, frozenset())


class TestDeterminism:
    def test_same_input_same_schedule(self):
        def build(b):
            for k in range(6):
                v = b.ld(None, "i", "p")
                b.add(None, v, k)
        a = _schedule(build, policy="bug")[2]
        b_ = _schedule(build, policy="bug")[2]
        assert a.placement == b_.placement


class TestSmallMachine:
    def test_narrow_cluster_schedules(self):
        m = small_machine()

        def lat(op):
            return m.latency_of(op.opcode.op_class)

        b = KernelBuilder("k")
        b.pattern("p", "table", 64)
        b.param("i")
        b.block("main")
        b.ld(None, "i", "p")
        b.mpy(None, "i", 3)
        b.add(None, "i", 1)
        ops = list(b.build().blocks[0].ops)
        ddg = build_ddg(ops, lat, frozenset())
        clusters = assign_clusters(ops, ddg, m, "bug")
        sched = list_schedule(ops, clusters, ddg, m)
        validate_schedule(ops, ddg, sched)
        for i, op in enumerate(ops):
            _cy, c, slot = sched.placement[i]
            assert slot in m.cluster.slots_for(op.opcode.op_class)
