"""Guided-search tests: fidelity rungs, the evaluation service, the
grammar mutator, and run_search end to end (tiny scales)."""

import pytest

from repro.eval import (
    DEFAULT_RUNGS,
    CampaignSpec,
    Evaluator,
    FidelityRung,
    Session,
    default_config,
    mutate_names,
    run_search,
    rung_configs,
    rungs_from_spec,
    sweep_experiment_id,
)
from repro.eval.sweep import SweepPlan
from repro.merge import parse_scheme, semantic_key
from repro.sim import SimConfig

TINY = SimConfig(instr_limit=600, timeslice=300, warmup_instrs=150)


def tiny_session(store=None, rungs=DEFAULT_RUNGS, **kw):
    return Session(config=TINY, configs=rung_configs(TINY, rungs),
                   store=store, **kw)


class TestRungs:
    def test_full_fidelity_must_be_the_empty_tag(self):
        """The empty tag is what aliases search cells with exhaustive
        sweep cells — both couplings are enforced."""
        with pytest.raises(ValueError, match="empty tag"):
            FidelityRung("f1", 1.0)
        with pytest.raises(ValueError, match="empty tag"):
            FidelityRung("", 0.5)

    def test_tag_delimiters_rejected(self):
        for bad in ("f:1", "f@1", "f%1"):
            with pytest.raises(ValueError, match="delimiters"):
                FidelityRung(bad, 0.5)

    def test_for_scale_canonical_tags(self):
        assert FidelityRung.for_scale(0.05).tag == "f0.05"
        assert FidelityRung.for_scale(1.0).tag == ""

    def test_rungs_from_spec_parses_default_ladder(self):
        assert rungs_from_spec("0.05,0.25,1") == DEFAULT_RUNGS
        assert rungs_from_spec([0.05, 0.25, 1.0]) == DEFAULT_RUNGS

    def test_rungs_from_spec_validation(self):
        with pytest.raises(ValueError, match="increasing"):
            rungs_from_spec("0.25,0.05,1")
        with pytest.raises(ValueError, match="full fidelity"):
            rungs_from_spec("0.05,0.25")
        with pytest.raises(ValueError, match="empty"):
            rungs_from_spec("")

    def test_rung_configs_derive_from_base(self):
        """SimConfig.scaled truncates, so the registry must be exactly
        base.scaled(rung.scale) — no full-fidelity entry."""
        configs = rung_configs(TINY)
        assert set(configs) == {"f0.05", "f0.25"}
        assert configs["f0.05"] == TINY.scaled(0.05)


class TestEvaluator:
    PLAN = SweepPlan.build(2, ["LLLL"])

    def test_requires_registered_rungs(self):
        with pytest.raises(ValueError, match="not registered"):
            Evaluator(Session(config=TINY), self.PLAN)

    def test_rejects_misderived_rung_config(self):
        session = Session(config=TINY,
                          configs={"f0.05": TINY.scaled(0.25),
                                   "f0.25": TINY.scaled(0.25)})
        with pytest.raises(ValueError, match="derive"):
            Evaluator(session, self.PLAN)

    def test_price_in_full_fidelity_units(self):
        ev = Evaluator(tiny_session(), self.PLAN)
        full, screen = DEFAULT_RUNGS[-1], DEFAULT_RUNGS[0]
        canons = [g.canonical for g in self.PLAN.groups]
        assert ev.price(canons, full) == len(canons)
        assert ev.price(canons[:2], screen) == 2 * 0.05

    def test_unknown_rung_and_candidate_rejected(self):
        ev = Evaluator(tiny_session(), self.PLAN)
        with pytest.raises(KeyError, match="unknown rung"):
            ev.rung("f0.5")
        with pytest.raises(Exception):
            ev.cells(["definitely-not-a-scheme"], DEFAULT_RUNGS[0])

    def test_fidelity_tag_travels_in_cell_keys(self, tmp_path):
        session = tiny_session(store=str(tmp_path / "run"))
        ev = Evaluator(session, self.PLAN)
        canons = [g.canonical for g in self.PLAN.groups]
        ev.evaluate(canons[:1], DEFAULT_RUNGS[0])
        keys = set(session.store.load_cells("sweep2"))
        assert keys and all(k.endswith("%f0.05") for k in keys)

    def test_full_rung_aliases_exhaustive_sweep_cells(self, tmp_path):
        """A sweep's cells satisfy a later full-fidelity evaluation
        byte-for-byte — nothing re-simulates."""
        session = tiny_session(store=str(tmp_path / "run"))
        sweep = session.sweep(2, ["LLLL"])
        ev = Evaluator(session, self.PLAN)
        canons = [g.canonical for g in self.PLAN.groups]
        rep = ev.evaluate(canons, DEFAULT_RUNGS[-1])
        assert rep.executed == 0
        assert rep.reused == len(self.PLAN.cells())
        assert sweep.meta["frontier"]  # the sweep actually ran


class TestMutator:
    def test_known_neighborhood_of_3sss(self):
        assert mutate_names("3SSS") == (
            "2C3S", "2SC3", "3CSS", "3SCS", "3SSC")

    def test_single_block_flips(self):
        assert mutate_names("1S") == ("1C",)
        assert mutate_names("1C") == ("1S",)

    @pytest.mark.parametrize("seed", ["3SSS", "2SC", "C4", "2SS",
                                      "3CCC", "2SC3"])
    def test_ports_preserved_and_seed_excluded(self, seed):
        n = parse_scheme(seed).n_ports
        neighbors = mutate_names(seed)
        assert neighbors  # every paper scheme has moves
        for m in neighbors:
            assert parse_scheme(m).n_ports == n, (seed, m)
            assert m != seed
            assert semantic_key(m) != semantic_key(seed), (seed, m)

    def test_neighbors_are_deduplicated_and_sorted(self):
        for seed in ("3SSS", "2SC", "C4"):
            out = mutate_names(seed)
            assert list(out) == sorted(set(out))

    def test_unrecognized_name_has_no_moves(self):
        assert mutate_names("ST", 1) == ()


class TestRunSearch:
    def test_exhaustive_budget_is_bit_identical_to_sweep(self, machine=None):
        sweep = tiny_session().sweep(2, ["LLLL"])
        result, report = run_search(tiny_session(), 2, ["LLLL"])
        assert report.mode == "exhaustive"
        assert result.rows == sweep.rows
        assert result.meta["frontier"] == sweep.meta["frontier"]
        assert result.experiment == "search2"

    def test_capped_budget_screens_on_reduced_rungs(self):
        result, report = run_search(tiny_session(), 3, ["LLLL"],
                                    budget=0.5)
        assert report.mode == "halving"
        assert report.spent <= report.budget_units + 1e-9
        assert report.full_fraction <= 0.5
        assert report.schedule[0]["rung"] == "f0.05"
        assert report.schedule[-1]["rung"] == "full"
        assert result.meta["search"]["mode"] == "halving"
        # promotion bookkeeping is reported, never silent
        screened = report.schedule[0]
        assert {"frontier", "neighborhood",
                "promoted"} <= set(screened)

    def test_validation(self):
        session = tiny_session()
        with pytest.raises(ValueError, match="budget must be > 0"):
            run_search(session, 2, ["LLLL"], budget=0.0)
        with pytest.raises(ValueError, match="full fidelity"):
            run_search(session, 2, ["LLLL"],
                       rungs=(FidelityRung.for_scale(0.05),))
        with pytest.raises(ValueError, match="reduced rung"):
            run_search(session, 2, ["LLLL"], budget=0.5,
                       rungs=(FidelityRung.for_scale(1.0),))

    def test_search_resumes_from_store_without_resimulating(self,
                                                            tmp_path):
        """Kill-and-reinvoke: the second run replays the schedule with
        every cell reused from the store."""
        url = str(tmp_path / "run")
        first, rep1 = run_search(tiny_session(store=url), 3, ["LLLL"],
                                 budget=0.9)
        assert any(e["executed"] for e in rep1.schedule)
        second, rep2 = run_search(tiny_session(store=url), 3, ["LLLL"],
                                  budget=0.9)
        assert all(e["executed"] == 0 for e in rep2.schedule)
        # the replayed schedule and frontier are identical; only the
        # executed/reused audit counts differ
        assert second.rows == first.rows
        assert second.meta["frontier"] == first.meta["frontier"]
        assert rep2.evaluated_full == rep1.evaluated_full
        assert rep2.spent == rep1.spent  # pricing is schedule-pure

    def test_evolve_mode_discovers_through_the_grammar(self):
        result, report = run_search(tiny_session(), 3, ["LLLL"],
                                    budget=0.9, evolve=True, seed=1,
                                    population=3, generations=2)
        assert report.mode == "evolve"
        assert any(e["round"].startswith("gen") for e in report.schedule)
        assert result.meta["frontier"]

    def test_evolve_final_generation_pool_is_fully_measured(self):
        """Regression: at 4 threads the grammar is rich enough that the
        last generation still finds fresh mutants — those must not join
        the pool unmeasured (rung 0 reuses the evolve phase's low-rung
        IPC and used to KeyError on them)."""
        result, report = run_search(tiny_session(), 4, ["LLLL"],
                                    budget=0.9, evolve=True,
                                    population=4, generations=2)
        gens = [e for e in report.schedule
                if e["round"].startswith("gen")]
        rung0 = next(e for e in report.schedule if e["round"] == "rung0")
        # the reused rung-0 pool is exactly what the generations measured
        assert rung0["candidates"] == sum(e["candidates"] for e in gens)
        assert rung0["executed"] == 0
        assert result.meta["frontier"]

    def test_session_search_verb_saves_artifact(self, tmp_path):
        session = tiny_session(store=str(tmp_path / "run"))
        result = session.search(2, ["LLLL"], save=True)
        loaded = session.store.load_artifact("search2")
        assert loaded is not None
        assert loaded.rows == result.rows


class TestQueueSearch:
    def test_queue_spec_requires_queue_store(self, tmp_path):
        session = tiny_session(store=str(tmp_path / "run"))
        spec = CampaignSpec(experiment=sweep_experiment_id(2),
                            kind="search", workloads=("LLLL",))
        with pytest.raises(ValueError, match="queue:"):
            run_search(session, 2, ["LLLL"], queue_spec=spec)

    def test_coordinator_drains_inline_and_marks_done(self, tmp_path):
        """A search coordinator on a queue store is self-sufficient:
        it enqueues each rung and drains alongside (here: without) a
        fleet, then flips the manifest to done."""
        base = default_config(0.04)
        url = f"queue:{tmp_path / 'q.db'}"
        session = Session(config=base, configs=rung_configs(base),
                          store=url)
        spec = CampaignSpec(
            experiment=sweep_experiment_id(2), scale=0.04,
            kind="search", workloads=("LLLL",),
            configs=tuple((r.tag, r.scale)
                          for r in DEFAULT_RUNGS if r.tag))
        result, report = run_search(session, 2, ["LLLL"],
                                    queue_spec=spec)
        assert report.mode == "exhaustive"
        assert len(session.store.load_cells("sweep2")) == \
            len(SweepPlan.build(2, ["LLLL"]).cells())
        status = session.store.manifest()["experiments"]["search2"]
        assert status["search_status"] == "done"
        assert result.meta["frontier"]


class TestCli:
    def test_search_command_runs(self, tmp_path, capsys):
        from repro.eval.cli import main

        out_dir = str(tmp_path / "run")
        assert main(["search", "-t", "2", "--workloads", "LLLL",
                     "--scale", "0.04", "--store", out_dir]) == 0
        out = capsys.readouterr().out
        assert "search" in out and "frontier" in out.lower()

    def test_search_thread_bounds_enforced(self, capsys):
        from repro.eval.cli import main

        assert main(["search", "-t", "9"]) == 1
        assert "1..8" in capsys.readouterr().err
