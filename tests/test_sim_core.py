"""Simulator-core tests with hand-analyzable mini programs."""

from repro.arch import paper_machine
from repro.compiler import compile_kernel
from repro.ir import KernelBuilder
from repro.merge import get_scheme
from repro.sim import MTCore, SimConfig, ThreadState, run_workload
from repro.sim.cache import Cache, CacheConfig, PerfectCache

MACHINE = paper_machine()


def _straightline(n_adds=4, trip=8):
    """A loop of independent adds: ops and cycles are exactly countable."""
    b = KernelBuilder("line")
    b.param("i")
    b.live_out("i")
    b.block("loop")
    for k in range(n_adds):
        b.add(None, "i", k)
    b.add("i", "i", 1)
    c = b.cmp(None, "i", trip)
    b.br_loop(c, "loop", trip=trip)
    return compile_kernel(b.build(), MACHINE)


def _single_core(prog, scheme="ST", icache=None, dcache=None):
    core = MTCore(MACHINE, get_scheme(scheme),
                  icache or PerfectCache(), dcache or PerfectCache())
    t = ThreadState(prog, 0, seed=0)
    core.set_contexts([t])
    return core, t


class TestSingleThread:
    def test_ipc_matches_hand_count(self):
        prog = _straightline()
        blk = prog.blocks[0]
        n_cycles = len(blk.mops)
        n_ops = blk.n_ops
        core, t = _single_core(prog)
        core.run(10_000, instr_limit=n_cycles * 50)
        # steady state: every iteration = block cycles + 2-cycle taken
        # penalty on 7 of 8 back edges
        iters = t.issued_instrs / n_cycles
        expect_cycles = iters * (n_cycles + 2 * 7 / 8)
        assert abs(core.stats.cycles - expect_cycles) / expect_cycles < 0.05
        assert t.issued_ops == iters * n_ops

    def test_taken_branch_costs_two_dead_cycles(self):
        b = KernelBuilder("g")
        b.param("i")
        b.live_out("i")
        b.block("a")
        b.add("i", "i", 1)
        b.goto("a")
        prog = compile_kernel(b.build(), MACHINE)
        core, t = _single_core(prog)
        core.run(300, instr_limit=10_000)
        n = len(prog.blocks[0].mops)
        # every lap: n instruction cycles + 2 penalty cycles
        per_lap = n + 2
        assert abs(core.stats.cycles / t.issued_instrs - per_lap / n) < 0.1

    def test_dcache_load_miss_stalls(self):
        b = KernelBuilder("m")
        b.pattern("big", "stream", 1 << 20, stride=64)  # miss every load
        b.param("i")
        b.live_out("i")
        b.block("loop")
        b.ld(None, "i", "big")
        b.add("i", "i", 1)
        c = b.cmp(None, "i", 64)
        b.br_loop(c, "loop", trip=64)
        prog = compile_kernel(b.build(), MACHINE)
        dcache = Cache(CacheConfig())
        core, t = _single_core(prog, dcache=dcache)
        core.run(5_000, instr_limit=200)
        assert t.dcache_misses > 0
        # each miss adds 20 cycles to the iteration
        assert core.stats.cycles > t.dcache_misses * 20

    def test_store_miss_does_not_stall(self):
        def kernel(op):
            b = KernelBuilder("s")
            b.pattern("big", "stream", 1 << 20, stride=64)
            b.param("i")
            b.live_out("i")
            b.block("loop")
            if op == "st":
                b.st("i", "i", "big")
            else:
                b.ld(None, "i", "big")
            b.add("i", "i", 1)
            c = b.cmp(None, "i", 64)
            b.br_loop(c, "loop", trip=64)
            return compile_kernel(b.build(), MACHINE)

        results = {}
        for op in ("st", "ld"):
            core, t = _single_core(kernel(op), dcache=Cache(CacheConfig()))
            core.run(20_000, instr_limit=300)
            results[op] = core.stats.cycles
        assert results["ld"] > 2 * results["st"]

    def test_icache_miss_stalls_fetch(self):
        prog = _straightline(n_adds=4, trip=8)
        icache = Cache(CacheConfig(size=256, assoc=1, line=64))  # tiny
        core, t = _single_core(prog, icache=icache)
        core.run(5_000, instr_limit=100)
        assert t.icache_misses > 0

    def test_instr_limit_stops_run(self):
        prog = _straightline()
        core, t = _single_core(prog)
        reason = core.run(100_000, instr_limit=50)
        assert reason == "limit"
        assert t.issued_instrs == 50

    def test_timeslice_stops_run(self):
        prog = _straightline()
        core, t = _single_core(prog)
        reason = core.run(100, instr_limit=None)
        assert reason == "timeslice"
        assert core.stats.cycles == 100


class TestMultiThread:
    def _pair(self, scheme):
        prog = _straightline(n_adds=2)
        core = MTCore(MACHINE, get_scheme(scheme), PerfectCache(),
                      PerfectCache())
        ts = [ThreadState(prog, i, seed=i) for i in range(2)]
        core.set_contexts(ts)
        core.run(2_000, instr_limit=500)
        return core, ts

    def test_smt_two_threads_beat_one(self):
        prog = _straightline(n_adds=2)
        core1, _ = _single_core(prog)
        core1.run(2_000, instr_limit=500)
        core2, _ = self._pair("1S")
        assert core2.stats.ipc > 1.4 * core1.stats.ipc

    def test_rotation_keeps_threads_balanced(self):
        core, ts = self._pair("1S")
        a, b = ts[0].issued_instrs, ts[1].issued_instrs
        assert abs(a - b) / max(a, b) < 0.15

    def test_fixed_priority_starves_late_ports(self):
        prog = _straightline(n_adds=2)
        core = MTCore(MACHINE, get_scheme("3CCC"), PerfectCache(),
                      PerfectCache(), rotate=False)
        # threads all on cluster-0-heavy code: port 0 wins every conflict
        ts = [ThreadState(prog, i, seed=i) for i in range(4)]
        core.set_contexts(ts)
        core.run(3_000, instr_limit=2_000)
        counts = sorted(t.issued_instrs for t in ts)
        assert counts[-1] > 2 * counts[0]

    def test_merged_hist_counts_coissue(self):
        core, ts = self._pair("1S")
        hist = core.stats.merged_hist
        assert 2 in hist and hist[2] > 0

    def test_vertical_waste_counted(self):
        b = KernelBuilder("w")
        b.pattern("big", "stream", 1 << 22, stride=64)
        b.param("i")
        b.live_out("i")
        b.block("loop")
        b.ld(None, "i", "big")
        b.add("i", "i", 1)
        c = b.cmp(None, "i", 32)
        b.br_loop(c, "loop", trip=32)
        prog = compile_kernel(b.build(), MACHINE)
        core = MTCore(MACHINE, get_scheme("ST"), PerfectCache(),
                      Cache(CacheConfig()))
        core.set_contexts([ThreadState(prog, 0, seed=0)])
        core.run(3_000, instr_limit=60)
        assert core.stats.vertical_waste > 0


class TestRunWorkload:
    def test_four_thread_run(self, saxpy_prog):
        cfg = SimConfig(instr_limit=2_000, timeslice=500, warmup_instrs=200)
        res = run_workload([saxpy_prog] * 4, "3SSS", cfg)
        assert res.ipc > 0
        assert len(res.threads) == 4
        assert all(t.issued_instrs > 0 for t in res.threads)

    def test_deterministic_given_seed(self, saxpy_prog):
        cfg = SimConfig(instr_limit=1_000, timeslice=300, warmup_instrs=0,
                        seed=5)
        a = run_workload([saxpy_prog] * 4, "2SC3", cfg)
        b = run_workload([saxpy_prog] * 4, "2SC3", cfg)
        assert a.stats.cycles == b.stats.cycles
        assert a.stats.ops == b.stats.ops

    def test_seed_changes_outcome(self, saxpy_prog):
        base = SimConfig(instr_limit=1_000, timeslice=300, warmup_instrs=0)
        import dataclasses
        a = run_workload([saxpy_prog] * 4, "2SC3", base)
        b = run_workload([saxpy_prog] * 4, "2SC3",
                         dataclasses.replace(base, seed=99))
        assert a.stats.cycles != b.stats.cycles

    def test_ipc_bounded_by_issue_width(self, saxpy_prog):
        cfg = SimConfig(instr_limit=1_000, timeslice=300, warmup_instrs=0)
        res = run_workload([saxpy_prog] * 4, "3SSS", cfg)
        assert res.ipc <= MACHINE.total_issue_width

    def test_per_thread_reporting(self, saxpy_prog):
        cfg = SimConfig(instr_limit=500, timeslice=200, warmup_instrs=0)
        res = run_workload([saxpy_prog] * 2, "1S", cfg)
        per = res.per_thread()
        assert len(per) == 2
        for stats in per.values():
            assert stats["instrs"] > 0
