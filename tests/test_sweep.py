"""Design-space sweep: enumerator, dedup, sharding, merge, CLI."""

import json
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import paper_machine
from repro.eval import (
    RunStore,
    StoreMismatchError,
    enumerate_candidates,
    enumerate_names,
    merge_runs,
    run_sweep,
    shard_cells,
    sweep_cells,
)
from repro.eval.cli import main
from repro.eval.sweep import candidate_table
from repro.merge import (
    PAPER_SCHEMES,
    SEMANTIC_EQUIV,
    canonical_root,
    get_scheme,
    parse_scheme,
    semantic_key,
)
from repro.sim import SimConfig, run_workload
from repro.workloads import WORKLOAD_ORDER, workload_programs

TINY = SimConfig(instr_limit=600, timeslice=300, warmup_instrs=150)

MACHINE = paper_machine()

#: names per thread count the grammar spans (cascades + N=4 trees + CN).
EXPECTED_COUNTS = {1: 1, 2: 3, 3: 5, 4: 17, 5: 34, 6: 89}


@lru_cache(maxsize=None)
def _probe_programs():
    return tuple(workload_programs("LLMH", MACHINE))


@lru_cache(maxsize=None)
def _probe_stats(name: str) -> tuple:
    """Simulated fingerprint of one scheme on the probe workload."""
    r = run_workload(list(_probe_programs()), name, TINY)
    return (r.stats.cycles, r.stats.ops, r.stats.instrs,
            tuple(sorted(r.stats.merged_hist.items())))


# ----------------------------------------------------------------------
# qualified names (the @N parser extension)
# ----------------------------------------------------------------------
class TestQualifiedNames:
    def test_qualifier_disambiguates_3_thread_cascade(self):
        tree = parse_scheme("2SC")
        cascade = parse_scheme("2SC@3")
        assert tree.n_ports == 4
        assert cascade.n_ports == 3
        assert repr(cascade.root) == "C(S(P0,P1),P2)"
        assert cascade.name == "2SC@3"

    def test_qualifier_must_agree_with_requested_count(self):
        assert parse_scheme("2SC@3", 3).n_ports == 3
        with pytest.raises(ValueError, match="declares 3"):
            parse_scheme("2SC@3", 4)

    def test_bad_qualifier_rejected(self):
        with pytest.raises(ValueError, match="qualifier"):
            parse_scheme("2SC@x")
        with pytest.raises(ValueError, match=">= 1"):
            parse_scheme("2SC@0")

    def test_get_scheme_resolves_qualified_names(self):
        s = get_scheme("2cc@3")
        assert s.n_ports == 3 and s.name == "2CC@3"


# ----------------------------------------------------------------------
# the enumerator
# ----------------------------------------------------------------------
class TestEnumerateNames:
    @pytest.mark.parametrize("n,count", sorted(EXPECTED_COUNTS.items()))
    def test_grammar_counts(self, n, count):
        names = enumerate_names(n)
        assert len(names) == count
        assert len(set(names)) == count

    def test_every_name_covers_exactly_n_ports(self):
        for n in range(1, 7):
            for name in enumerate_names(n):
                assert parse_scheme(name).n_ports == n, name

    def test_all_paper_schemes_enumerated_at_4_threads(self):
        names = enumerate_names(4)
        for scheme in PAPER_SCHEMES:
            assert scheme in names, scheme

    def test_beyond_paper_names_present(self):
        """The sweep opens the space beyond the published 16."""
        names = enumerate_names(4)
        assert "2CC3" in names and "2C3C" in names

    def test_no_alias_duplicates(self):
        """1Ck builds the same AST as Ck; only one may be enumerated."""
        reprs = [repr(get_scheme(n).root) for n in enumerate_names(4)]
        assert len(reprs) == len(set(reprs))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            enumerate_names(0)


class TestEnumerateCandidates:
    def test_registry_equivalences_reproduced(self):
        """The published SEMANTIC_EQUIV table falls out of the general
        parc-lowering rule, plus the two unpublished aliases."""
        groups = {g.canonical: set(g.members)
                  for g in enumerate_candidates(4)}
        assert groups["3CCC"] == {"3CCC", "C4", "2CC3", "2C3C"}
        assert groups["3SCC"] == {"3SCC", "2SC3"}
        assert groups["3CCS"] == {"3CCS", "2C3S"}
        for par, serial in SEMANTIC_EQUIV.items():
            assert par in groups[serial]

    def test_canonical_member_is_parc_free(self):
        for n in range(1, 7):
            for g in enumerate_candidates(n):
                root = get_scheme(g.canonical).root
                assert repr(root) == repr(canonical_root(root)), g

    def test_members_partition_names(self):
        for n in range(2, 6):
            members = [m for g in enumerate_candidates(n) for m in g.members]
            assert sorted(members) == sorted(enumerate_names(n))

    def test_distinct_canonicals_have_distinct_keys(self):
        keys = [semantic_key(g.canonical) for g in enumerate_candidates(4)]
        assert len(keys) == len(set(keys))


# ----------------------------------------------------------------------
# hypothesis: the satellite properties
# ----------------------------------------------------------------------
@given(data=st.data(), n=st.integers(min_value=1, max_value=6))
def test_every_generated_scheme_roundtrips(data, n):
    """parse(name) -> scheme -> parse(scheme.name) is the identity."""
    name = data.draw(st.sampled_from(enumerate_names(n)))
    scheme = parse_scheme(name)
    again = parse_scheme(scheme.name)
    assert again.name == scheme.name
    assert again.n_ports == scheme.n_ports == n
    assert repr(again.root) == repr(scheme.root)


_MULTI_GROUPS = [g for n in (2, 3, 4) for g in enumerate_candidates(n)
                 if len(g.members) > 1]


@settings(deadline=None)
@given(group=st.sampled_from(_MULTI_GROUPS))
def test_dedup_never_merges_distinct_semantics(group):
    """Every member of a deduplicated group simulates identically on a
    probe workload - so simulating the canonical member only is exact,
    never an approximation."""
    reference = _probe_stats(group.canonical)
    for member in group.members:
        assert _probe_stats(member) == reference, member


@settings(deadline=None)
@given(pair=st.sampled_from([
    (a.canonical, b.canonical)
    for n in (3, 4)
    for i, a in enumerate(enumerate_candidates(n))
    for b in enumerate_candidates(n)[i + 1:i + 2]
]))
def test_distinct_groups_are_distinguishable(pair):
    """Adjacent distinct groups carry distinct keys (the dedup is not
    collapsing everything)."""
    a, b = pair
    assert semantic_key(a) != semantic_key(b)


# ----------------------------------------------------------------------
# engines agree outside the 4-thread registry (new port counts)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["2SC@3", "C3", "2SS@3", "C5"])
def test_engines_bit_identical_on_swept_port_counts(name):
    programs = list(_probe_programs())
    fast = run_workload(programs, name, TINY)
    ref = run_workload(programs, name,
                       SimConfig(instr_limit=600, timeslice=300,
                                 warmup_instrs=150, engine="reference"))
    assert fast.stats.cycles == ref.stats.cycles
    assert fast.stats.ops == ref.stats.ops
    assert fast.stats.merged_hist == ref.stats.merged_hist


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------
class TestShardCells:
    CELLS = sweep_cells(3, ["LLLL", "HHHH", "MMMM"])

    def test_shards_partition_the_grid(self):
        full = {c.key for c in self.CELLS}
        parts = [shard_cells(self.CELLS, i, 3) for i in (1, 2, 3)]
        keys = [{c.key for c in p} for p in parts]
        assert set().union(*keys) == full
        for i in range(3):
            for j in range(i + 1, 3):
                assert not keys[i] & keys[j]

    def test_deterministic_under_input_order(self):
        forward = shard_cells(self.CELLS, 1, 2)
        backward = shard_cells(list(reversed(self.CELLS)), 1, 2)
        assert [c.key for c in forward] == [c.key for c in backward]

    def test_single_shard_is_identity(self):
        assert ({c.key for c in shard_cells(self.CELLS, 1, 1)}
                == {c.key for c in self.CELLS})

    def test_bad_shard_args_rejected(self):
        with pytest.raises(ValueError):
            shard_cells(self.CELLS, 0, 2)
        with pytest.raises(ValueError):
            shard_cells(self.CELLS, 3, 2)
        with pytest.raises(ValueError):
            shard_cells(self.CELLS, 1, 0)


# ----------------------------------------------------------------------
# run-store merging
# ----------------------------------------------------------------------
class TestMergeRuns:
    def test_union_of_disjoint_cells(self, tmp_path):
        a = RunStore.open_or_create(tmp_path / "a", {"f": 1})
        b = RunStore.open_or_create(tmp_path / "b", {"f": 1})
        a.record_cell("x", "k1", 1.0)
        b.record_cell("x", "k2", 2.0)
        b.record_cell("y", "k3", 3.0)
        dest = merge_runs(tmp_path / "m", [a.path, b.path])
        assert dest.load_cells("x") == {"k1": 1.0, "k2": 2.0}
        assert dest.load_cells("y") == {"k3": 3.0}
        assert dest.fingerprint() == {"f": 1}

    def test_conflicting_values_rejected(self, tmp_path):
        a = RunStore.open_or_create(tmp_path / "a", {"f": 1})
        b = RunStore.open_or_create(tmp_path / "b", {"f": 1})
        a.record_cell("x", "k", 1.0)
        b.record_cell("x", "k", 1.5)
        with pytest.raises(StoreMismatchError, match="conflicting"):
            merge_runs(tmp_path / "m", [a.path, b.path])

    def test_agreeing_duplicates_allowed(self, tmp_path):
        a = RunStore.open_or_create(tmp_path / "a", {"f": 1})
        b = RunStore.open_or_create(tmp_path / "b", {"f": 1})
        a.record_cell("x", "k", 1.0)
        b.record_cell("x", "k", 1.0)
        dest = merge_runs(tmp_path / "m", [a.path, b.path])
        assert dest.load_cells("x") == {"k": 1.0}

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        RunStore.open_or_create(tmp_path / "a", {"f": 1})
        RunStore.open_or_create(tmp_path / "b", {"f": 2})
        with pytest.raises(StoreMismatchError, match="different"):
            merge_runs(tmp_path / "m", [tmp_path / "a", tmp_path / "b"])

    def test_non_run_directory_rejected(self, tmp_path):
        with pytest.raises(StoreMismatchError, match="manifest"):
            merge_runs(tmp_path / "m", [tmp_path / "missing"])

    def test_mixed_stamped_and_unstamped_sources_rejected(self, tmp_path):
        RunStore.open_or_create(tmp_path / "a", {"f": 1})
        RunStore.open_or_create(tmp_path / "b")  # no fingerprint
        with pytest.raises(StoreMismatchError, match="no config"):
            merge_runs(tmp_path / "m", [tmp_path / "a", tmp_path / "b"])

    def test_unstamped_sources_into_stamped_dest_rejected(self, tmp_path):
        RunStore.open_or_create(tmp_path / "m", {"f": 1})
        RunStore.open_or_create(tmp_path / "a")
        with pytest.raises(StoreMismatchError, match="cannot be verified"):
            merge_runs(tmp_path / "m", [tmp_path / "a"])

    def test_rejected_merge_leaves_destination_untouched(self, tmp_path):
        """Validation is two-phase: a conflict in the last source must
        not leave cells from earlier sources in the destination."""
        a = RunStore.open_or_create(tmp_path / "a", {"f": 1})
        b = RunStore.open_or_create(tmp_path / "b", {"f": 1})
        a.record_cell("x", "k1", 1.0)
        b.record_cell("x", "k1", 2.0)  # conflicts with a
        b.record_cell("y", "k2", 3.0)
        with pytest.raises(StoreMismatchError, match="conflicting"):
            merge_runs(tmp_path / "m", [a.path, b.path])
        dest = RunStore(str(tmp_path / "m"))
        assert dest.experiments_with_cells() == []


# ----------------------------------------------------------------------
# the sweep itself
# ----------------------------------------------------------------------
class TestRunSweep:
    WORKLOADS = ["LLLL", "HHHH"]

    def test_sharded_campaign_equals_single_machine(self, tmp_path):
        """The acceptance path: two shards into separate run dirs,
        merged, resumed — identical artifact, zero new simulations."""
        full, grid = run_sweep(2, self.WORKLOADS, TINY, MACHINE)
        shards = []
        for i in (1, 2):
            store = RunStore.open_or_create(tmp_path / f"s{i}")
            _r, g = run_sweep(2, self.WORKLOADS, TINY, MACHINE,
                              store=store, shard=(i, 2))
            shards.append((store, g))
        assert (shards[0][1].executed + shards[1][1].executed
                == grid.executed)
        merged = merge_runs(tmp_path / "m",
                            [s.path for s, _g in shards])
        resumed, rgrid = run_sweep(2, self.WORKLOADS, TINY, MACHINE,
                                   store=merged)
        assert rgrid.executed == 0
        assert rgrid.reused == grid.executed
        assert resumed.to_json() == full.to_json()

    def test_every_member_is_a_design_point(self):
        result, _ = run_sweep(2, self.WORKLOADS, TINY, MACHINE)
        schemes = {row[0] for row in result.rows}
        assert schemes == set(enumerate_names(2))

    def test_group_members_share_ipc_but_not_cost(self):
        result, _ = run_sweep(3, self.WORKLOADS, TINY, MACHINE)
        rows = {row[0]: row for row in result.rows}
        assert rows["2CC@3"][1] == rows["C3"][1]          # same IPC
        assert rows["2CC@3"][2] != rows["C3"][2]          # distinct cost

    def test_frontier_members_marked_and_non_dominated(self):
        result, _ = run_sweep(2, self.WORKLOADS, TINY, MACHINE)
        frontier = {p["scheme"] for p in result.meta["frontier"]}
        marked = {row[0] for row in result.rows if row[4] == "*"}
        assert marked == frontier

    def test_budget_recommendation_within_budget(self):
        result, _ = run_sweep(3, self.WORKLOADS, TINY, MACHINE,
                              budget_transistors=5_000)
        pick = result.meta["recommendation"]
        assert pick is not None
        assert pick["transistors"] <= 5_000
        assert any(pick["scheme"] == p["scheme"]
                   for p in result.meta["frontier"])

    def test_impossible_budget_reports_none(self):
        result, _ = run_sweep(2, self.WORKLOADS, TINY, MACHINE,
                              budget_transistors=1)
        assert result.meta["recommendation"] is None
        assert any("no scheme qualifies" in n for n in result.notes)

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown workloads"):
            run_sweep(2, ["NOPE"], TINY, MACHINE)

    def test_default_workloads_are_all_nine(self):
        cells = sweep_cells(2)
        assert len(cells) == 2 * len(WORKLOAD_ORDER)

    def test_candidate_table_lists_all(self):
        table = candidate_table(4, MACHINE)
        assert table.meta["n_schemes"] == 17
        assert table.meta["n_semantics"] == 12


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestSweepCli:
    def test_list_candidates_runs_without_simulation(self, capsys):
        assert main(["sweep", "--threads", "4", "--list"]) == 0
        out = capsys.readouterr().out
        assert "17 schemes, 12 distinct semantics" in out
        for scheme in PAPER_SCHEMES:
            assert scheme in out

    def test_sweep_end_to_end_with_store(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        assert main(["sweep", "--threads", "2", "--workloads", "LLLL",
                     "--scale", "0.03", "--out", run_dir]) == 0
        out = capsys.readouterr().out
        assert "frontier" in out
        saved = json.load(open(f"{run_dir}/sweep2.json"))
        assert saved["meta"]["threads"] == 2
        # resume: zero new simulations, identical artifact
        assert main(["sweep", "--threads", "2", "--workloads", "LLLL",
                     "--scale", "0.03", "--resume", run_dir]) == 0
        assert "cells: 0 simulated" in capsys.readouterr().out
        assert json.load(open(f"{run_dir}/sweep2.json")) == saved

    def test_shard_flow_matches_unsharded(self, tmp_path, capsys):
        args = ["sweep", "--threads", "2", "--workloads", "LLLL,HHHH",
                "--scale", "0.03"]
        assert main([*args, "--out", str(tmp_path / "full")]) == 0
        assert main([*args, "--shard", "1/2",
                     "--out", str(tmp_path / "s1")]) == 0
        assert main([*args, "--shard", "2/2",
                     "--out", str(tmp_path / "s2")]) == 0
        assert main(["merge", str(tmp_path / "m"),
                     str(tmp_path / "s1"), str(tmp_path / "s2")]) == 0
        assert main([*args, "--resume", str(tmp_path / "m")]) == 0
        capsys.readouterr()
        full = json.load(open(tmp_path / "full" / "sweep2.json"))
        merged = json.load(open(tmp_path / "m" / "sweep2.json"))
        assert full == merged

    def test_shard_run_saves_no_final_artifact(self, tmp_path, capsys):
        assert main(["sweep", "--threads", "2", "--workloads", "LLLL",
                     "--scale", "0.03", "--shard", "1/2",
                     "--out", str(tmp_path / "s1")]) == 0
        assert "merge the shard run directories" in capsys.readouterr().out
        assert not (tmp_path / "s1" / "sweep2.json").exists()

    def test_bad_shard_spec_errors(self, tmp_path, capsys):
        assert main(["sweep", "--shard", "3/2",
                     "--out", str(tmp_path / "x")]) == 1
        assert "shard" in capsys.readouterr().err

    def test_shard_without_run_directory_errors(self, capsys):
        """A shard's only output is its recorded cells; simulating one
        without a store would silently discard the work."""
        assert main(["sweep", "--threads", "2", "--shard", "1/2"]) == 1
        assert "--shard requires a run directory" in capsys.readouterr().err

    def test_threads_out_of_range_errors(self, capsys):
        assert main(["sweep", "--threads", "9"]) == 1
        assert "--threads" in capsys.readouterr().err

    def test_unknown_workload_errors(self, capsys):
        assert main(["sweep", "--workloads", "LLLL,NOPE"]) == 1
        assert "NOPE" in capsys.readouterr().err

    def test_unknown_subcommand_errors(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown subcommand" in capsys.readouterr().err

    def test_merge_requires_sources(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["merge", str(tmp_path / "m")])

    def test_out_resume_conflict_errors(self, tmp_path, capsys):
        assert main(["sweep", "--threads", "2",
                     "--out", str(tmp_path / "a"),
                     "--resume", str(tmp_path / "b")]) == 1
        assert "conflicts" in capsys.readouterr().err
