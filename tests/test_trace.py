"""Trace-generation tests: determinism, control flow, addresses."""

from collections import Counter

from repro.arch import paper_machine
from repro.compiler import compile_kernel
from repro.ir import KernelBuilder
from repro.trace import InstructionStream
from repro.trace.addrgen import make_generator
from repro.ir.patterns import AccessPattern
import random

MACHINE = paper_machine()


def _take(stream, n):
    return [next(stream) for _ in range(n)]


def _mini_loop(trip=4, prob=0.0):
    b = KernelBuilder("mini")
    b.pattern("d", "stream", 1024, stride=4)
    b.param("i")
    b.live_out("i")
    b.block("loop")
    v = b.ld(None, "i", "d")
    if prob:
        c0 = b.cmp(None, v, 0)
        b.br_if(c0, "rare", prob=prob)
    b.add("i", "i", 4)
    c = b.cmp(None, "i", 4 * trip)
    b.br_loop(c, "loop", trip=trip)
    b.block("rare") if prob else None
    if prob:
        b.add("i", "i", 8)
        b.goto("loop")
    return compile_kernel(b.build(), MACHINE)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        prog = _mini_loop(prob=0.3)
        a = _take(InstructionStream(prog, 0, seed=7), 200)
        b = _take(InstructionStream(prog, 0, seed=7), 200)
        assert [(f.mop.address, f.taken, f.addrs) for f in a] == \
            [(f.mop.address, f.taken, f.addrs) for f in b]

    def test_different_seed_different_branches(self):
        prog = _mini_loop(prob=0.5)
        a = _take(InstructionStream(prog, 0, seed=1), 300)
        b = _take(InstructionStream(prog, 0, seed=2), 300)
        assert [f.taken for f in a] != [f.taken for f in b]


class TestControlFlow:
    def test_loop_executes_trip_times_per_round(self):
        prog = _mini_loop(trip=4)
        blk = prog.blocks[0]
        per_round = len(blk.mops) * 4
        fetches = _take(InstructionStream(prog, 0, seed=0), per_round * 3)
        term = [f for f in fetches if f.branch and f.branch.is_terminator]
        takens = [f.taken for f in term]
        # pattern: taken,taken,taken,not - repeated
        assert takens[:8] == [True, True, True, False] * 2

    def test_restart_after_falloff(self):
        prog = _mini_loop(trip=2)
        stream = InstructionStream(prog, 0, seed=0)
        first = next(stream).mop.address
        seen = [next(stream).mop.address for _ in range(100)]
        assert first in seen  # wrapped back to the entry

    def test_bernoulli_rate_matches_probability(self):
        prog = _mini_loop(prob=0.4)
        fetches = _take(InstructionStream(prog, 0, seed=3), 6000)
        side = [f for f in fetches
                if f.branch is not None and not f.branch.is_terminator
                and f.branch.behavior.kind == "bernoulli"
                and f.branch.behavior.prob < 1.0]
        rate = sum(f.taken for f in side) / len(side)
        assert 0.3 < rate < 0.5

    def test_side_exit_skips_block_tail(self):
        prog = _mini_loop(prob=1.0)  # always exits
        stream = InstructionStream(prog, 0, seed=0)
        fetches = _take(stream, 50)
        # after a taken side exit, next fetch is the rare block's address
        rare_base = prog.blocks[1].mops[0].address
        for i, f in enumerate(fetches[:-1]):
            if f.taken and f.branch and not f.branch.is_terminator:
                assert fetches[i + 1].mop.address == rare_base
                break
        else:
            raise AssertionError("no side exit observed")


class TestAddresses:
    def test_stream_addresses_stride_and_wrap(self):
        pat = AccessPattern("s", "stream", footprint=16, stride=4)
        g = make_generator(pat, 0, 0, random.Random(0))
        offs = [g.next_address() for _ in range(6)]
        assert [o - offs[0] for o in offs[:4]] == [0, 4, 8, 12]
        assert offs[4] == offs[0]  # wrapped

    def test_random_addresses_within_footprint_aligned(self):
        pat = AccessPattern("r", "rand", footprint=256, align=8)
        g = make_generator(pat, 0, 0, random.Random(0))
        for _ in range(100):
            a = g.next_address()
            assert a % 8 == 0
            assert 0 <= a - g.base < 256

    def test_thread_spaces_disjoint(self):
        pat = AccessPattern("r", "rand", footprint=1 << 20, align=4)
        g0 = make_generator(pat, 0, 0, random.Random(0))
        g1 = make_generator(pat, 1, 0, random.Random(0))
        a0 = {g0.next_address() >> 32 for _ in range(10)}
        a1 = {g1.next_address() >> 32 for _ in range(10)}
        assert a0.isdisjoint(a1)

    def test_pattern_regions_disjoint_within_thread(self):
        p0 = AccessPattern("a", "rand", footprint=1 << 20, align=4)
        p1 = AccessPattern("b", "rand", footprint=1 << 20, align=4)
        g0 = make_generator(p0, 0, 0, random.Random(0))
        g1 = make_generator(p1, 0, 1, random.Random(0))
        r0 = {g0.next_address() >> 24 for _ in range(10)}
        r1 = {g1.next_address() >> 24 for _ in range(10)}
        assert r0.isdisjoint(r1)

    def test_fetch_addr_count_matches_mem_ops(self):
        prog = _mini_loop()
        for f in _take(InstructionStream(prog, 0, seed=0), 60):
            assert len(f.addrs) == len(f.mop.mem_ops)


class TestFetchDistribution:
    def test_every_static_instr_fetched(self):
        prog = _mini_loop(trip=4)
        static = {m.address for b in prog.blocks for m in b.mops}
        fetched = {f.mop.address for f in
                   _take(InstructionStream(prog, 0, seed=0), 400)}
        assert static <= fetched

    def test_fetch_counts_weighted_by_loop(self):
        prog = _mini_loop(trip=4)
        fetches = _take(InstructionStream(prog, 0, seed=0), 400)
        counts = Counter(f.mop.address for f in fetches)
        most = counts.most_common()
        # loop-body instructions dominate the fetch stream
        assert most[0][1] > 10


class TestMaterialize:
    """The bulk walk behind materialize() must produce the identical
    record sequence to the per-record generator walk."""

    def _fields(self, recs):
        return [(f.mop.address, f.taken, f.addrs,
                 None if f.branch is None else id(f.branch)) for f in recs]

    def test_bulk_equals_lazy_walk(self):
        prog = _mini_loop(trip=4, prob=0.3)
        lazy = InstructionStream(prog, 0, seed=11)
        bulk = InstructionStream(prog, 0, seed=11)
        a = self._fields(_take(lazy, 500))
        bulk.materialize(500)
        b = self._fields(_take(bulk, 500))
        assert a == b

    def test_mixed_batch_sizes_equal_lazy_walk(self):
        prog = _mini_loop(trip=3, prob=0.5)
        lazy = InstructionStream(prog, 2, seed=5)
        bulk = InstructionStream(prog, 2, seed=5)
        expect = self._fields(_take(lazy, 341))
        got = []
        for n in (1, 2, 7, 64, 3, 200, 64):
            bulk.materialize(n)
            assert bulk.buffered >= n
            got.extend(self._fields([next(bulk) for _ in range(n)]))
        assert got == expect[:len(got)]

    def test_buffered_counts_down_as_consumed(self):
        prog = _mini_loop()
        s = InstructionStream(prog, 0, seed=0)
        assert s.buffered == 0
        s.materialize(10)
        # the batch walk stops at a basic-block boundary, so at least
        # the requested count is buffered (possibly a few more).
        n = s.buffered
        assert n >= 10
        next(s)
        assert s.buffered == n - 1

    def test_materialize_after_lazy_consumption(self):
        """A stream already walked by next() keeps its position when a
        batch is requested afterwards."""
        prog = _mini_loop(trip=4, prob=0.2)
        ref = InstructionStream(prog, 1, seed=9)
        mixed = InstructionStream(prog, 1, seed=9)
        expect = self._fields(_take(ref, 120))
        got = self._fields(_take(mixed, 40))
        mixed.materialize(50)
        got += self._fields(_take(mixed, 80))
        assert got == expect

    def test_memory_free_records_are_reused(self):
        """Bulk mode shares immutable records for memory-free mops."""
        b = KernelBuilder("pure")
        b.param("i")
        b.live_out("i")
        b.block("loop")
        b.add("i", "i", 1)
        b.add(None, "i", 2)
        c = b.cmp(None, "i", 8)
        b.br_loop(c, "loop", trip=8)
        prog = compile_kernel(b.build(), MACHINE)
        s = InstructionStream(prog, 0, seed=0)
        s.materialize(100)
        recs = [next(s) for _ in range(100)]
        no_mem = [r for r in recs if not r.addrs and r.branch is None]
        assert no_mem and len({id(r) for r in no_mem}) < len(no_mem)
