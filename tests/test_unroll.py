"""Unroller tests: renaming, IV splitting, DCE, trip adjustment."""

from repro.compiler.options import CompilerOptions
from repro.compiler.unroll import dead_code_eliminate, unroll_function
from repro.ir import KernelBuilder


def _loop_kernel(trip=64):
    b = KernelBuilder("k")
    b.pattern("d", "stream", 4096, stride=4)
    b.param("i", "acc")
    b.live_out("i", "acc")
    b.block("loop")
    v = b.ld(None, "i", "d")
    w = b.add(None, v, 1)
    b.add("acc", "acc", w)          # loop-carried accumulator
    b.add("i", "i", 4)              # induction variable
    c = b.cmp(None, "i", 4 * trip)
    b.br_loop(c, "loop", trip=trip)
    return b.build()


def _unrolled(factor, **opts):
    fn = _loop_kernel()
    options = CompilerOptions(**opts)
    out, report = unroll_function(fn, {"loop": factor}, options)
    return out, report


class TestUnrollBasics:
    def test_factor_one_is_identity(self):
        out, report = _unrolled(1)
        assert report.factors == {}
        assert len(out.blocks[0].ops) == len(_loop_kernel().blocks[0].ops)

    def test_body_replicated(self):
        out, _ = _unrolled(4)
        loads = [op for op in out.blocks[0].ops if op.name == "ld"]
        assert len(loads) == 4

    def test_single_back_edge_remains(self):
        out, _ = _unrolled(4)
        branches = [op for op in out.blocks[0].ops if op.is_branch]
        assert len(branches) == 1
        assert branches[0] is out.blocks[0].ops[-1]

    def test_trip_count_scaled(self):
        out, _ = _unrolled(4)
        assert out.blocks[0].terminator.behavior.trip == 16

    def test_copy_tags_mark_mem_ops(self):
        out, _ = _unrolled(4)
        tags = [op.copy_tag for op in out.blocks[0].ops if op.is_mem]
        assert tags == [0, 1, 2, 3]


class TestIVSplitting:
    def test_single_iv_update_survives(self):
        out, report = _unrolled(4)
        iv_defs = [op for op in out.blocks[0].ops
                   if op.dest == "i" and op.name in ("add", "sub")]
        assert len(iv_defs) == 1
        assert iv_defs[0].srcs == ("i", 16)  # 4 iterations x stride 4
        assert report.ivs_split == {"loop": ["i"]}

    def test_shadow_offsets_are_independent(self):
        out, _ = _unrolled(4)
        shadows = [op for op in out.blocks[0].ops if op.dest and "$" in op.dest]
        assert len(shadows) == 3
        assert sorted(op.srcs[1] for op in shadows) == [4, 8, 12]
        for op in shadows:
            assert op.srcs[0] == "i"  # all off the live-in value

    def test_iv_split_disabled_chains_updates(self):
        out, report = _unrolled(4, iv_split=False)
        # the increment is replicated per copy (renamed, final keeps "i"):
        # a serial chain instead of independent shadows
        iv_defs = [op for op in out.blocks[0].ops
                   if op.dest is not None and op.dest.split("@")[0] == "i"]
        assert len(iv_defs) == 4
        assert report.ivs_split == {"loop": []}
        assert not any("$" in (op.dest or "") for op in out.blocks[0].ops)

    def test_accumulator_is_not_an_iv(self):
        """acc = acc + w has a non-immediate addend: must chain serially."""
        out, report = _unrolled(4)
        assert "acc" not in report.ivs_split["loop"]
        acc_defs = [op for op in out.blocks[0].ops
                    if op.dest is not None and op.dest.startswith("acc")]
        assert len(acc_defs) == 4

    def test_final_copy_restores_architectural_names(self):
        out, _ = _unrolled(4)
        # the last definition of acc must write "acc" itself (live-out)
        acc_defs = [op for op in out.blocks[0].ops
                    if op.dest is not None and op.dest.startswith("acc")]
        assert acc_defs[-1].dest == "acc"
        assert all(d.dest != "acc" for d in acc_defs[:-1])


class TestDCE:
    def test_dropped_compares_eliminated(self):
        out, report = _unrolled(4)
        cmps = [op for op in out.blocks[0].ops if op.name == "cmp"]
        assert len(cmps) == 1  # intermediate back-edge cmps are dead
        assert report.ops_removed_by_dce >= 3

    def test_dce_keeps_stores_and_branches(self):
        b = KernelBuilder("k")
        b.pattern("d", "table", 64)
        b.param("i")
        b.block("main")
        dead = b.add(None, "i", 1)     # never used
        live = b.add(None, "i", 2)
        b.st(live, "i", "d")
        fn = b.build()
        removed = dead_code_eliminate(fn)
        assert removed == 1
        names = [op.name for op in fn.blocks[0].ops]
        assert names == ["add", "st"]
        del dead

    def test_dce_transitive(self):
        b = KernelBuilder("k")
        b.param("i")
        b.block("main")
        a = b.add(None, "i", 1)
        c = b.add(None, a, 2)      # chain ends unused
        b.add("i", "i", 1)
        fn = b.build()
        assert dead_code_eliminate(fn) == 2
        del c


class TestSideExits:
    def test_side_exits_replicated_per_copy(self):
        b = KernelBuilder("k")
        b.pattern("d", "table", 64)
        b.param("i")
        b.block("loop")
        v = b.ld(None, "i", "d")
        c = b.cmp(None, v, 0)
        b.br_if(c, "rare", prob=0.05)
        b.add("i", "i", 1)
        t = b.cmp(None, "i", 64)
        b.br_loop(t, "loop", trip=64)
        b.block("rare")
        b.st("i", "i", "d")
        b.goto("loop")
        fn = b.build()
        out, _ = unroll_function(fn, {"loop": 4}, CompilerOptions())
        exits = [op for op in out.blocks[0].body_ops() if op.is_branch]
        assert len(exits) == 4  # one side exit per copy
