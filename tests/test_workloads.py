"""Workload (Table 2) and generator tests."""

import pytest

from repro.arch import paper_machine
from repro.kernels import by_name
from repro.workloads import (
    TABLE2,
    WORKLOAD_ORDER,
    all_class_combos,
    make_workload,
    workload_programs,
)

MACHINE = paper_machine()


class TestTable2:
    def test_nine_workloads(self):
        assert len(TABLE2) == 9
        assert set(WORKLOAD_ORDER) == set(TABLE2)

    def test_verbatim_rows(self):
        assert TABLE2["LLLL"] == ("mcf", "bzip2", "blowfish", "gsmencode")
        assert TABLE2["LLHH"] == ("mcf", "blowfish", "x264", "idct")
        assert TABLE2["HHHH"] == ("x264", "idct", "imgpipe", "colorspace")

    def test_names_match_ilp_classes(self):
        for combo, benches in TABLE2.items():
            classes = "".join(sorted(by_name(b).ilp_class for b in benches))
            assert classes == "".join(sorted(combo)), combo

    def test_programs_compiled_in_thread_order(self):
        progs = workload_programs("LLHH", MACHINE)
        assert [p.name for p in progs] == list(TABLE2["LLHH"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="Table 2"):
            workload_programs("XXXX", MACHINE)


class TestGenerator:
    def test_combo_classes_respected(self):
        progs = make_workload("LMHH", MACHINE, seed=1)
        classes = [by_name(p.name).ilp_class for p in progs]
        assert classes == ["L", "M", "H", "H"]

    def test_no_repeats_by_default(self):
        progs = make_workload("HHHH", MACHINE, seed=2)
        assert len({p.name for p in progs}) == 4

    def test_exhaustion_raises_without_repeats(self):
        with pytest.raises(ValueError, match="exhausted"):
            make_workload("LLLLL", MACHINE, seed=0)

    def test_repeats_allowed_when_asked(self):
        progs = make_workload("LLLLL", MACHINE, seed=0, allow_repeats=True)
        assert len(progs) == 5

    def test_deterministic_by_seed(self):
        a = [p.name for p in make_workload("LMH", MACHINE, seed=7)]
        b = [p.name for p in make_workload("LMH", MACHINE, seed=7)]
        assert a == b

    def test_bad_letter_rejected(self):
        with pytest.raises(ValueError):
            make_workload("LX", MACHINE)

    def test_all_class_combos(self):
        combos = all_class_combos(4)
        assert len(combos) == 15  # multisets of {L,M,H} size 4
        assert "LLLL" in combos and "HHHH" in combos
        for c in TABLE2:
            assert "".join(sorted(c)) in ["".join(sorted(x)) for x in combos]
