"""Workload (Table 2) and generator tests."""

import pytest

from repro.arch import paper_machine
from repro.kernels import by_name, compile_spec
from repro.workloads import (
    TABLE2,
    WORKLOAD_ORDER,
    all_class_combos,
    make_workload,
    synthetic_kernel,
    workload_programs,
)

MACHINE = paper_machine()


class TestTable2:
    def test_nine_workloads(self):
        assert len(TABLE2) == 9
        assert set(WORKLOAD_ORDER) == set(TABLE2)

    def test_verbatim_rows(self):
        assert TABLE2["LLLL"] == ("mcf", "bzip2", "blowfish", "gsmencode")
        assert TABLE2["LLHH"] == ("mcf", "blowfish", "x264", "idct")
        assert TABLE2["HHHH"] == ("x264", "idct", "imgpipe", "colorspace")

    def test_names_match_ilp_classes(self):
        for combo, benches in TABLE2.items():
            classes = "".join(sorted(by_name(b).ilp_class for b in benches))
            assert classes == "".join(sorted(combo)), combo

    def test_programs_compiled_in_thread_order(self):
        progs = workload_programs("LLHH", MACHINE)
        assert [p.name for p in progs] == list(TABLE2["LLHH"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="Table 2"):
            workload_programs("XXXX", MACHINE)


class TestGenerator:
    def test_combo_classes_respected(self):
        progs = make_workload("LMHH", MACHINE, seed=1)
        classes = [by_name(p.name).ilp_class for p in progs]
        assert classes == ["L", "M", "H", "H"]

    def test_no_repeats_by_default(self):
        progs = make_workload("HHHH", MACHINE, seed=2)
        assert len({p.name for p in progs}) == 4

    def test_exhaustion_raises_without_repeats(self):
        with pytest.raises(ValueError, match="exhausted"):
            make_workload("LLLLL", MACHINE, seed=0)

    def test_repeats_allowed_when_asked(self):
        progs = make_workload("LLLLL", MACHINE, seed=0, allow_repeats=True)
        assert len(progs) == 5

    def test_deterministic_by_seed(self):
        a = [p.name for p in make_workload("LMH", MACHINE, seed=7)]
        b = [p.name for p in make_workload("LMH", MACHINE, seed=7)]
        assert a == b

    def test_bad_letter_rejected(self):
        with pytest.raises(ValueError):
            make_workload("LX", MACHINE)

    def test_all_class_combos(self):
        combos = all_class_combos(4)
        assert len(combos) == 15  # multisets of {L,M,H} size 4
        assert "LLLL" in combos and "HHHH" in combos
        for c in TABLE2:
            assert "".join(sorted(c)) in ["".join(sorted(x)) for x in combos]


def _opcodes(spec):
    fn = spec.build()
    return [op.opcode.name for blk in fn.blocks for op in blk.ops]


class TestSyntheticKernel:
    """The three knobs must be deterministic, monotone and orthogonal."""

    def test_deterministic_ir(self):
        a = synthetic_kernel(ilp=0.5, mem=0.4, branchiness=0.3, seed=5)
        b = synthetic_kernel(ilp=0.5, mem=0.4, branchiness=0.3, seed=5)
        assert a.name == b.name
        assert _opcodes(a) == _opcodes(b)
        c = synthetic_kernel(ilp=0.5, mem=0.4, branchiness=0.3, seed=6)
        assert c.name != a.name  # seed is part of the cell identity

    def test_static_ipc_rises_with_ilp(self):
        ipcs = [compile_spec(synthetic_kernel(ilp=v), MACHINE).static_ipc()
                for v in (0.125, 0.5, 1.0)]
        assert ipcs[0] < ipcs[1] < ipcs[2]

    def test_mem_knob_moves_memory_fraction(self):
        fracs = []
        for v in (0.0, 0.3, 0.8):
            ops = _opcodes(synthetic_kernel(mem=v))
            fracs.append(sum(1 for o in ops if o in ("ld", "st")) / len(ops))
        assert fracs[0] < fracs[1] < fracs[2]

    def test_mem_knob_does_not_change_ilp_structure(self):
        """Loads splice into chains without lengthening them, so the
        memory knob must leave the schedulable parallelism (and hence
        ilp_class identity) alone."""
        lean = compile_spec(synthetic_kernel(ilp=1.0, mem=0.0), MACHINE)
        rich = compile_spec(synthetic_kernel(ilp=1.0, mem=0.8), MACHINE)
        assert rich.static_ipc() >= 0.6 * lean.static_ipc()

    def test_branchiness_counts_side_branches(self):
        def side_branches(spec):
            fn = spec.build()
            return sum(1 for blk in fn.blocks for op in blk.ops
                       if op.behavior is not None
                       and op.behavior.kind == "bernoulli"
                       and op.behavior.prob < 1.0)

        assert side_branches(synthetic_kernel(branchiness=0.0)) == 0
        assert side_branches(synthetic_kernel(branchiness=0.5)) == 3
        assert side_branches(synthetic_kernel(branchiness=1.0)) == 6

    def test_ilp_class_thirds(self):
        assert synthetic_kernel(ilp=0.2).ilp_class == "L"
        assert synthetic_kernel(ilp=0.5).ilp_class == "M"
        assert synthetic_kernel(ilp=0.9).ilp_class == "H"

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="ilp"):
            synthetic_kernel(ilp=0.0)
        with pytest.raises(ValueError, match="mem"):
            synthetic_kernel(mem=1.5)
        with pytest.raises(ValueError, match="branchiness"):
            synthetic_kernel(branchiness=-0.1)
        with pytest.raises(ValueError, match="n_ops"):
            synthetic_kernel(n_ops=4)
